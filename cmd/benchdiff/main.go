// Command benchdiff gates benchmark regressions in CI. It parses the
// output of `go test -bench`, reduces repeated -count runs to their best
// (minimum) time, and compares the result against a committed JSON
// baseline:
//
//	go test -bench=. -benchmem -benchtime=1x -count=3 -run='^$' . | tee bench.out
//	benchdiff -bench bench.out -write -baseline BENCH_baseline.json   # refresh
//	benchdiff -bench bench.out -baseline BENCH_baseline.json          # gate
//
// Two kinds of values are compared, with different rules:
//
//   - Timing metrics (ns/op, B/op, allocs/op) are one-sided: only a
//     regression beyond -time-tolerance (default +15%) fails. Taking the
//     minimum across counts filters scheduler noise; improvements never
//     fail the gate (refresh the baseline to bank them).
//
//   - Custom metrics reported via b.ReportMetric (figure values, solver
//     outputs) are deterministic simulation results, so they are held to a
//     tight two-sided -metric-tolerance (default 1%): drift in either
//     direction means the simulation's answers changed, which is a
//     correctness failure, not a performance one. The "workers" metric is
//     exempt — it labels the pool width, it is not a measurement.
//
// A benchmark present in the baseline but missing from the run fails the
// gate (a deleted benchmark must be removed from the baseline on purpose,
// with -write), and so does a benchmark whose unit set grew relative to
// the baseline (e.g. -benchmem added allocs/op): unrecorded units would be
// entirely ungated, so the mismatch is a failure with an explicit remedy
// rather than a silent gap. With -src the gate is two-way: the source tree is scanned
// for `func Benchmark*` declarations in *_test.go files, and any
// benchmark that exists in the tree but has no baseline entry fails —
// an ungated benchmark is a regression waiting to land unnoticed.
// Without -src, new benchmarks are merely reported, so ad-hoc local runs
// don't require a two-step dance.
//
// Three flags support the CI benchmark-trend pipeline: -record writes the
// parsed run to a dated snapshot (uploaded as an artifact, so the
// performance trajectory accumulates), -trend prints a ns/op table of the
// run against the baseline, and -ratio-max NUM:DEN:MAX (repeatable)
// gates same-run ns/op ratios (how the fast-forward kernel's ≥2× speedup
// over the dense loop and the KS statistic's sort win are enforced
// without machine-speed flake).
//
// Exit status: 0 clean, 1 regression or drift, 2 usage or parse error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded values: best wall time plus every
// secondary metric go test printed (B/op, allocs/op, ReportMetric values).
type Entry struct {
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the committed JSON document.
type Baseline struct {
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkFoo-8   3   123456 ns/op   12 B/op   3 allocs/op   1.5 widgets
//
// The -8 CPU suffix is stripped so runs from machines with different core
// counts compare against the same baseline key.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parse reduces a `go test -bench` stream to one Entry per benchmark,
// keeping the minimum ns/op (and minimum of each timing metric) across
// repeated -count runs. Custom metrics are deterministic, so any run's
// value serves; the last one wins.
func parse(r io.Reader) (map[string]Entry, error) {
	out := map[string]Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, fields := m[1], strings.Fields(m[2])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("odd value/unit pairing on %q", sc.Text())
		}
		e, seen := out[name]
		if e.Metrics == nil {
			e.Metrics = map[string]float64{}
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q: %v", name, fields[i], err)
			}
			unit := fields[i+1]
			switch {
			case unit == "ns/op":
				if !seen || v < e.NsPerOp {
					e.NsPerOp = v
				}
			case unit == "B/op" || unit == "allocs/op":
				if prev, ok := e.Metrics[unit]; !ok || v < prev {
					e.Metrics[unit] = v
				}
			default:
				e.Metrics[unit] = v
			}
		}
		out[name] = e
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return out, nil
}

// timingMetric reports whether a secondary metric follows the one-sided
// timing rule rather than the two-sided determinism rule.
func timingMetric(unit string) bool { return unit == "B/op" || unit == "allocs/op" }

func compare(base Baseline, got map[string]Entry, timeTol, metricTol float64) []string {
	var problems []string
	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Benchmarks[name]
		have, ok := got[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: in baseline but missing from run", name))
			continue
		}
		if want.NsPerOp > 0 && have.NsPerOp > want.NsPerOp*(1+timeTol) {
			problems = append(problems, fmt.Sprintf("%s: ns/op %.0f -> %.0f (+%.1f%%, limit +%.0f%%)",
				name, want.NsPerOp, have.NsPerOp, 100*(have.NsPerOp/want.NsPerOp-1), 100*timeTol))
		}
		units := make([]string, 0, len(want.Metrics))
		for u := range want.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, unit := range units {
			wv := want.Metrics[unit]
			hv, ok := have.Metrics[unit]
			if !ok {
				problems = append(problems, fmt.Sprintf("%s: metric %q gone from run", name, unit))
				continue
			}
			switch {
			case unit == "workers": // pool-width label, not a measurement
			case timingMetric(unit):
				if wv > 0 && hv > wv*(1+timeTol) {
					problems = append(problems, fmt.Sprintf("%s: %s %.0f -> %.0f (+%.1f%%, limit +%.0f%%)",
						name, unit, wv, hv, 100*(hv/wv-1), 100*timeTol))
				}
			default:
				if drift := relDiff(wv, hv); drift > metricTol {
					problems = append(problems, fmt.Sprintf("%s: %s %g -> %g (drift %.2f%%, limit %.2f%% — simulation output changed)",
						name, unit, wv, hv, 100*drift, 100*metricTol))
				}
			}
		}
		// The reverse direction: the run reports units the baseline has
		// never seen (a benchmark grew -benchmem columns or a new
		// ReportMetric). Those values would be entirely ungated, so the unit
		// set changing is itself a failure with an explicit remedy.
		added := make([]string, 0)
		for u := range have.Metrics {
			if _, ok := want.Metrics[u]; !ok {
				added = append(added, u)
			}
		}
		if len(added) > 0 {
			sort.Strings(added)
			problems = append(problems, fmt.Sprintf("%s: unit set changed — run reports %s absent from the baseline (regenerate with -write to gate them)",
				name, strings.Join(added, ", ")))
		}
	}
	return problems
}

// benchDecl matches a top-level benchmark declaration in a _test.go
// file. Sub-benchmarks (b.Run) inherit their parent's gate, so only
// function names matter.
var benchDecl = regexp.MustCompile(`(?m)^func (Benchmark\w+)\s*\(`)

// scanBenchmarks walks a source tree and returns the sorted set of
// benchmark function names declared in *_test.go files.
func scanBenchmarks(dir string) ([]string, error) {
	set := map[string]bool{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "vendor", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range benchDecl.FindAllSubmatch(src, -1) {
			set[string(m[1])] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// ungated returns the tree benchmarks with no baseline entry. A baseline
// key gates its exact name and, for sub-benchmarks, any "name/..." key.
func ungated(tree []string, base Baseline) []string {
	var missing []string
	for _, name := range tree {
		if _, ok := base.Benchmarks[name]; ok {
			continue
		}
		covered := false
		for key := range base.Benchmarks {
			if strings.HasPrefix(key, name+"/") {
				covered = true
				break
			}
		}
		if !covered {
			missing = append(missing, name)
		}
	}
	return missing
}

// printTrend writes a ns/op comparison table of the run against the
// baseline: one row per benchmark name in either set, with the relative
// delta. CI prints this on every bench run so the performance trajectory
// is visible in the job log next to the recorded snapshot artifact.
func printTrend(w io.Writer, base Baseline, got map[string]Entry) {
	names := map[string]bool{}
	for n := range base.Benchmarks {
		names[n] = true
	}
	for n := range got {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	fmt.Fprintf(w, "%-60s %15s %15s %10s\n", "benchmark", "baseline ns/op", "run ns/op", "delta")
	for _, n := range sorted {
		want, inBase := base.Benchmarks[n]
		have, inRun := got[n]
		switch {
		case !inRun:
			fmt.Fprintf(w, "%-60s %15.0f %15s %10s\n", n, want.NsPerOp, "-", "gone")
		case !inBase:
			fmt.Fprintf(w, "%-60s %15s %15.0f %10s\n", n, "-", have.NsPerOp, "new")
		case want.NsPerOp > 0:
			fmt.Fprintf(w, "%-60s %15.0f %15.0f %+9.1f%%\n", n, want.NsPerOp, have.NsPerOp, 100*(have.NsPerOp/want.NsPerOp-1))
		default:
			fmt.Fprintf(w, "%-60s %15.0f %15.0f %10s\n", n, want.NsPerOp, have.NsPerOp, "n/a")
		}
	}
}

// checkRatio enforces a NUM:DEN:MAX ns/op ratio within one run: it fails
// when got[NUM] takes more than MAX times got[DEN]. This is how the
// fast-forward kernel's ≥2× speedup is gated
// (BenchmarkSimulateFastForward:BenchmarkSimulateDense:0.5): a same-run
// ratio is immune to machine-speed drift, unlike comparing either side
// against a recorded absolute time.
// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func checkRatio(spec string, got map[string]Entry) (problem string, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return "", fmt.Errorf("ratio spec %q: want NUM:DEN:MAX", spec)
	}
	limit, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || limit <= 0 {
		return "", fmt.Errorf("ratio spec %q: bad limit %q", spec, parts[2])
	}
	num, ok := got[parts[0]]
	if !ok {
		return fmt.Sprintf("ratio gate: %s missing from run", parts[0]), nil
	}
	den, ok := got[parts[1]]
	if !ok {
		return fmt.Sprintf("ratio gate: %s missing from run", parts[1]), nil
	}
	if den.NsPerOp <= 0 {
		return fmt.Sprintf("ratio gate: %s has no ns/op", parts[1]), nil
	}
	if r := num.NsPerOp / den.NsPerOp; r > limit {
		return fmt.Sprintf("ratio gate: %s/%s = %.3f exceeds %.3f (%.2fx speedup, need ≥%.2fx)",
			parts[0], parts[1], r, limit, 1/r, 1/limit), nil
	}
	return "", nil
}

// relDiff is |a-b| scaled by the larger magnitude, with exact-zero pairs
// equal (many figure metrics are exactly 0 by construction).
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) / den
}

func run() int {
	benchPath := flag.String("bench", "", "go test -bench output to read ('-' or empty = stdin)")
	basePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON path")
	write := flag.Bool("write", false, "write the parsed run as the new baseline instead of comparing")
	note := flag.String("note", "", "with -write: annotation stored in the baseline")
	timeTol := flag.Float64("time-tolerance", 0.15, "allowed one-sided ns/op, B/op, allocs/op regression (0.15 = +15%)")
	metricTol := flag.Float64("metric-tolerance", 0.01, "allowed two-sided drift for custom metrics (0.01 = 1%)")
	srcDir := flag.String("src", "", "source tree to scan for Benchmark* declarations; any found without a baseline entry fails the gate")
	record := flag.String("record", "", "also write the parsed run as a dated snapshot to this path (the CI trend artifact); gating continues normally")
	trend := flag.Bool("trend", false, "print a ns/op trend table of the run against the baseline")
	var ratioMax multiFlag
	flag.Var(&ratioMax, "ratio-max", "same-run ns/op ratio gate NUM:DEN:MAX (repeatable), e.g. BenchmarkSimulateFastForward:BenchmarkSimulateDense:0.5")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *benchPath != "" && *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	got, err := parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}

	if *record != "" {
		doc := Baseline{Note: *note, Benchmarks: got}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*record, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return 2
		}
		fmt.Printf("benchdiff: recorded %d benchmarks to %s\n", len(got), *record)
	}

	if *write {
		doc := Baseline{Note: *note, Benchmarks: got}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*basePath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return 2
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(got), *basePath)
		return 0
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v (run with -write to create the baseline)\n", err)
		return 2
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *basePath, err)
		return 2
	}

	problems := compare(base, got, *timeTol, *metricTol)
	for _, spec := range ratioMax {
		p, err := checkRatio(spec, got)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return 2
		}
		if p != "" {
			problems = append(problems, p)
		}
	}
	if *trend {
		printTrend(os.Stdout, base, got)
	}
	if *srcDir != "" {
		tree, err := scanBenchmarks(*srcDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: scanning %s: %v\n", *srcDir, err)
			return 2
		}
		for _, name := range ungated(tree, base) {
			problems = append(problems, fmt.Sprintf("%s: declared in %s but missing from the baseline (regenerate with -write)", name, *srcDir))
		}
	}
	for name := range got {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("benchdiff: note: %s is new (not in baseline; add with -write)\n", name)
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL %s\n", p)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: %d problem(s) against %s\n", len(problems), *basePath)
		return 1
	}
	fmt.Printf("benchdiff: %d benchmarks within tolerance of %s\n", len(base.Benchmarks), *basePath)
	return 0
}

func main() { os.Exit(run()) }
