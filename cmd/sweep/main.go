// Command sweep regenerates the paper's evaluation figures (Section 7) as
// text tables: performance (Figures 3, 5, 6, 10), prefetching (Figure 7),
// and energy (Figures 8, 9). Figure 4 is produced by cmd/leakage.
//
// Usage:
//
//	sweep                       # every figure at the default scale
//	sweep -fig 6 -reads 100000  # one figure, bigger budget
//	sweep -fig 6 -detail        # include the §7 side statistics
//	sweep -fig all -j 8         # shard the grid across 8 workers
//	sweep -fig 3 -trace-out t.jsonl  # also export per-cell command traces
//
// The -j flag bounds the worker pool the simulation grid is sharded
// across (0 = GOMAXPROCS). Output is byte-identical for every -j value:
// the pool only decides when cells are computed, never what they contain
// or the order they are printed in. The -trace-out export shares the same
// guarantee (cells are emitted in sorted key order).
//
// Profiling: -cpuprofile, -memprofile, and -exectrace write the standard
// Go profiles for the whole sweep (inspect with `go tool pprof` /
// `go tool trace`).
package main

import (
	"flag"
	"fmt"
	"os"

	"fsmem/internal/addr"
	"fsmem/internal/experiments"
	"fsmem/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,5,6,7,8,9,10, s6, ablations, or all")
	reads := flag.Int64("reads", 20_000, "demand reads per simulation (paper: 1M)")
	cores := flag.Int("cores", 8, "cores / security domains")
	seed := flag.Uint64("seed", 42, "random seed")
	detail := flag.Bool("detail", false, "with -fig 6: also print latency/utilization/dummy statistics")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	workers := flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS); output is identical for every value")
	channels := flag.Int("channels", 0, "run the grid through an N-channel fabric (0 = single channel; s6 always uses 4)")
	routing := flag.String("routing", "colored", "multi-channel routing: colored or interleaved")
	traceOut := flag.String("trace-out", "", "export every memoized cell's command trace as JSONL to this file")
	traceCap := flag.Int("trace-cap", 0, "per-run trace ring capacity in events (0 = default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	exectrace := flag.String("exectrace", "", "write a Go execution trace to this file")
	flag.Parse()
	fail := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
	}
	stopProf, err := obs.StartProfiling(*cpuprofile, *memprofile, *exectrace)
	fail(err)
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: profiling: %v\n", err)
		}
	}()
	render := func(t experiments.Table) string {
		if *csv {
			return t.CSV()
		}
		return t.Format()
	}
	show := func(t experiments.Table, err error) {
		fail(err)
		fmt.Println(render(t))
	}

	route, err := addr.RoutingByName(*routing)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	settings := experiments.Settings{Cores: *cores, TargetReads: *reads, Seed: *seed, Workers: *workers,
		Channels: *channels, Routing: route}
	if *traceOut != "" {
		settings.Observe = &obs.Options{TraceCap: *traceCap}
	}
	r := experiments.NewRunner(settings)
	switch *fig {
	case "all":
		tables, err := experiments.All(r)
		for _, t := range tables {
			fmt.Println(render(t))
		}
		fail(err)
		tables, err = experiments.Ablations(r)
		for _, t := range tables {
			fmt.Println(render(t))
		}
		fail(err)
	case "ablations":
		tables, err := experiments.Ablations(r)
		for _, t := range tables {
			fmt.Println(render(t))
		}
		fail(err)
	case "3":
		show(experiments.Figure3(r))
	case "4":
		t, _, err := experiments.Figure4(r)
		show(t, err)
		fmt.Println("run cmd/leakage for the full execution-profile series")
	case "5":
		show(experiments.Figure5(r))
	case "6":
		show(experiments.Figure6(r))
		if *detail {
			show(experiments.Figure6Detail(r))
		}
	case "7":
		show(experiments.Figure7(r))
	case "8":
		show(experiments.Figure8(r))
	case "9":
		show(experiments.Figure9(r))
	case "10":
		show(experiments.Figure10(r))
	case "s6":
		show(experiments.Section6(r))
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q (options: %v, all)\n", *fig, experiments.Names())
		os.Exit(2)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fail(err)
		err = r.ExportTraces(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fail(err)
	}
}
