// Command sweep regenerates the paper's evaluation figures (Section 7) as
// text tables: performance (Figures 3, 5, 6, 10), prefetching (Figure 7),
// and energy (Figures 8, 9). Figure 4 is produced by cmd/leakage.
//
// Usage:
//
//	sweep                       # every figure at the default scale
//	sweep -fig 6 -reads 100000  # one figure, bigger budget
//	sweep -fig 6 -detail        # include the §7 side statistics
//	sweep -fig all -j 8         # shard the grid across 8 workers
//
// The -j flag bounds the worker pool the simulation grid is sharded
// across (0 = GOMAXPROCS). Output is byte-identical for every -j value:
// the pool only decides when cells are computed, never what they contain
// or the order they are printed in.
package main

import (
	"flag"
	"fmt"
	"os"

	"fsmem/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,5,6,7,8,9,10, ablations, or all")
	reads := flag.Int64("reads", 20_000, "demand reads per simulation (paper: 1M)")
	cores := flag.Int("cores", 8, "cores / security domains")
	seed := flag.Uint64("seed", 42, "random seed")
	detail := flag.Bool("detail", false, "with -fig 6: also print latency/utilization/dummy statistics")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	workers := flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS); output is identical for every value")
	flag.Parse()
	render := func(t experiments.Table) string {
		if *csv {
			return t.CSV()
		}
		return t.Format()
	}
	fail := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
	}
	show := func(t experiments.Table, err error) {
		fail(err)
		fmt.Println(render(t))
	}

	r := experiments.NewRunner(experiments.Settings{Cores: *cores, TargetReads: *reads, Seed: *seed, Workers: *workers})
	switch *fig {
	case "all":
		tables, err := experiments.All(r)
		for _, t := range tables {
			fmt.Println(render(t))
		}
		fail(err)
		tables, err = experiments.Ablations(r)
		for _, t := range tables {
			fmt.Println(render(t))
		}
		fail(err)
	case "ablations":
		tables, err := experiments.Ablations(r)
		for _, t := range tables {
			fmt.Println(render(t))
		}
		fail(err)
	case "3":
		show(experiments.Figure3(r))
	case "4":
		t, _, err := experiments.Figure4(r)
		show(t, err)
		fmt.Println("run cmd/leakage for the full execution-profile series")
	case "5":
		show(experiments.Figure5(r))
	case "6":
		show(experiments.Figure6(r))
		if *detail {
			show(experiments.Figure6Detail(r))
		}
	case "7":
		show(experiments.Figure7(r))
	case "8":
		show(experiments.Figure8(r))
	case "9":
		show(experiments.Figure9(r))
	case "10":
		show(experiments.Figure10(r))
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q (options: %v, all)\n", *fig, experiments.Names())
		os.Exit(2)
	}
}
