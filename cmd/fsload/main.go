// Command fsload is a closed-loop load generator for fsmemd: a fixed
// number of in-flight clients each submit a job, wait for it to reach
// a terminal state, and record the end-to-end latency. It reports
// throughput and latency percentiles, so the daemon's scaling and
// cache-hit claims are measurable rather than asserted.
//
// Usage:
//
//	fsload -addr http://127.0.0.1:8377                 # 200 simulate jobs, 8 clients
//	fsload -n 1000 -c 32 -spread 16                    # 16 distinct configs (cache mix)
//	fsload -spread 1                                   # one config: pure cache-hit path
//	fsload -retries 8                                  # retry backpressure/conn errors
//	fsload -report fsload_report.json                  # machine-readable report
//	fsload -chaos-kill -fsmemd-bin ./fsmemd            # SIGKILL + restart mid-run
//
// With -spread 1 every request after the first is answered from the
// daemon's result cache, which is the hot path BenchmarkServerCacheHit
// pins. Larger -spread values force distinct simulations and exercise
// the queue and worker pool.
//
// With -chaos-kill fsload manages its own fsmemd child (started with a
// -data-dir so the job journal and result store are live), SIGKILLs it
// once roughly half the requests have been dispatched, restarts it over
// the same data directory, and demands that every request still
// completes — the end-to-end demonstration that an accepted job
// survives an unclean daemon death. Client retries are forced on in
// this mode so the downtime window is ridden out with backoff.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fsmem/internal/config"
	"fsmem/internal/server"
	"fsmem/internal/server/client"
)

type report struct {
	Requests   int     `json:"requests"`
	Completed  int     `json:"completed"`
	CacheHits  int     `json:"cache_hits"`
	Rejected   int     `json:"rejected"` // 429/503 backpressure responses
	Failed     int     `json:"failed"`
	Elapsed    float64 `json:"elapsed_seconds"`
	Throughput float64 `json:"throughput_rps"`
	// Retries and RetryWaitSeconds come from the client's retry layer:
	// how many attempts were re-issued and how long the load loop spent
	// honoring backoff (including server Retry-After hints).
	Retries          int64   `json:"retries"`
	RetryWaitSeconds float64 `json:"retry_wait_seconds"`
	ChaosKills       int     `json:"chaos_kills,omitempty"`
	// PerWorker breaks completions down by the worker that served each
	// job (status documents carry the worker name when the daemon has
	// one — always, through a cluster coordinator). Empty against an
	// unnamed single-node daemon.
	PerWorker map[string]int `json:"per_worker,omitempty"`
	LatencyMS struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P95 float64 `json:"p95"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
}

// daemon is a chaos-managed fsmemd child process.
type daemon struct {
	bin     string
	addr    string
	dataDir string
	cmd     *exec.Cmd
}

func (d *daemon) start() error {
	cmd := exec.Command(d.bin,
		"-addr", d.addr,
		"-data-dir", d.dataDir,
		"-queue", "256",
		"-rate", "100000",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	d.cmd = cmd
	return nil
}

// kill SIGKILLs the child — no drain, no warning — and reaps it.
func (d *daemon) kill() error {
	if d.cmd == nil || d.cmd.Process == nil {
		return fmt.Errorf("fsmemd child not running")
	}
	if err := d.cmd.Process.Kill(); err != nil {
		return err
	}
	d.cmd.Wait() // reap; the error is the kill signal, not a failure
	d.cmd = nil
	return nil
}

func (d *daemon) stop() {
	if d.cmd != nil && d.cmd.Process != nil {
		d.cmd.Process.Signal(os.Interrupt)
		d.cmd.Wait()
		d.cmd = nil
	}
}

// waitHealthy polls /healthz until the daemon answers.
func waitHealthy(ctx context.Context, cl *client.Client, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		hctx, cancel := context.WithTimeout(ctx, time.Second)
		err := cl.Health(hctx)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon not healthy after %s: %w", budget, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8377", "fsmemd base URL")
	n := flag.Int("n", 200, "total requests")
	c := flag.Int("c", 8, "concurrent closed-loop clients")
	spread := flag.Int("spread", 4, "distinct configs to cycle through (1 = pure cache-hit path)")
	wl := flag.String("workload", "mcf", "workload for generated simulate jobs")
	sched := flag.String("sched", "fs_bp", "scheduler for generated simulate jobs")
	cores := flag.Int("cores", 2, "cores for generated simulate jobs")
	reads := flag.Int64("reads", 500, "reads per generated simulate job")
	poll := flag.Duration("poll", 10*time.Millisecond, "status poll interval")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	retries := flag.Int("retries", 0, "client retry attempts per request (0 = no retries; chaos-kill defaults to 10)")
	reportPath := flag.String("report", "", "write the JSON report to this file")
	chaosKill := flag.Bool("chaos-kill", false, "spawn a child fsmemd, SIGKILL it mid-run, restart it, and require zero lost jobs")
	fsmemdBin := flag.String("fsmemd-bin", "fsmemd", "fsmemd binary for -chaos-kill")
	dataDir := flag.String("data-dir", "", "durability dir for the -chaos-kill child (default: temp dir)")
	flag.Parse()

	if *spread < 1 {
		*spread = 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var child *daemon
	if *chaosKill {
		if *retries == 0 {
			*retries = 10
		}
		dir := *dataDir
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "fsload-chaos-")
			if err != nil {
				fmt.Fprintln(os.Stderr, "fsload:", err)
				os.Exit(2)
			}
			defer os.RemoveAll(dir)
		}
		hostPort, err := freeAddr()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsload:", err)
			os.Exit(2)
		}
		child = &daemon{bin: *fsmemdBin, addr: hostPort, dataDir: dir}
		if err := child.start(); err != nil {
			fmt.Fprintf(os.Stderr, "fsload: starting %s: %v\n", *fsmemdBin, err)
			os.Exit(2)
		}
		defer child.stop()
		*addr = "http://" + hostPort
		fmt.Fprintf(os.Stderr, "fsload: chaos child %s on %s (data dir %s)\n", *fsmemdBin, hostPort, dir)
	}

	cl := client.New(*addr, nil)
	if *retries > 1 {
		cl.EnableRetry(client.RetryPolicy{MaxAttempts: *retries, Seed: 1})
	}
	if err := waitHealthy(ctx, cl, 10*time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "fsload: daemon not reachable at %s: %v\n", *addr, err)
		os.Exit(2)
	}

	reqFor := func(i int) server.JobRequest {
		e := config.Default()
		e.Workload = *wl
		e.Scheduler = *sched
		e.Cores = *cores
		e.Reads = *reads
		// Distinct seeds address distinct cache entries; modulo spread
		// keeps the working set bounded so hits dominate once warm.
		e.Seed = uint64(1 + i%*spread)
		return server.JobRequest{Kind: server.KindSimulate, Simulate: &e}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		rep       report
		next      atomic.Int64
		failures  []string
	)

	// Chaos: once roughly half the requests have been dispatched,
	// SIGKILL the child and restart it over the same data directory.
	// The in-flight clients ride out the downtime via retry/backoff.
	chaosDone := make(chan struct{})
	if child != nil {
		go func() {
			defer close(chaosDone)
			for next.Load() < int64(*n)/2 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(5 * time.Millisecond):
				}
			}
			fmt.Fprintln(os.Stderr, "fsload: chaos: SIGKILL fsmemd")
			if err := child.kill(); err != nil {
				fmt.Fprintln(os.Stderr, "fsload: chaos kill:", err)
				return
			}
			mu.Lock()
			rep.ChaosKills++
			mu.Unlock()
			if err := child.start(); err != nil {
				fmt.Fprintln(os.Stderr, "fsload: chaos restart:", err)
				return
			}
			fmt.Fprintln(os.Stderr, "fsload: chaos: fsmemd restarted")
		}()
	} else {
		close(chaosDone)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n || ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				st, err := cl.Submit(ctx, reqFor(i))
				if err == nil && !st.State.Terminal() {
					st, err = cl.Wait(ctx, st.ID, *poll)
				}
				lat := time.Since(t0)
				mu.Lock()
				switch {
				case err != nil:
					if ae, ok := err.(*client.APIError); ok && (ae.StatusCode == 429 || ae.StatusCode == 503) {
						rep.Rejected++
					} else {
						rep.Failed++
						failures = append(failures, fmt.Sprintf("request %d: %v", i, err))
					}
				case st.State == server.StateDone:
					rep.Completed++
					if st.CacheHit {
						rep.CacheHits++
					}
					if st.Worker != "" {
						if rep.PerWorker == nil {
							rep.PerWorker = map[string]int{}
						}
						rep.PerWorker[st.Worker]++
					}
					latencies = append(latencies, lat)
				default:
					rep.Failed++
					failures = append(failures, fmt.Sprintf("request %d: terminal state %q (job %s): %s", i, st.State, st.ID, st.Error))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	<-chaosDone
	elapsed := time.Since(start)

	rep.Requests = *n
	rep.Elapsed = elapsed.Seconds()
	if elapsed > 0 {
		rep.Throughput = float64(rep.Completed) / elapsed.Seconds()
	}
	retryCount, retryWait := cl.RetryStats()
	rep.Retries = retryCount
	rep.RetryWaitSeconds = retryWait.Seconds()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(q float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(q * float64(len(latencies)-1))
		return float64(latencies[idx]) / float64(time.Millisecond)
	}
	rep.LatencyMS.P50 = pct(0.50)
	rep.LatencyMS.P90 = pct(0.90)
	rep.LatencyMS.P95 = pct(0.95)
	rep.LatencyMS.P99 = pct(0.99)
	if len(latencies) > 0 {
		rep.LatencyMS.Max = float64(latencies[len(latencies)-1]) / float64(time.Millisecond)
	}

	fmt.Printf("fsload: %d requests, %d clients, spread %d\n", rep.Requests, *c, *spread)
	fmt.Printf("  completed   %d (%d cache hits)\n", rep.Completed, rep.CacheHits)
	fmt.Printf("  rejected    %d (backpressure)\n", rep.Rejected)
	fmt.Printf("  failed      %d\n", rep.Failed)
	fmt.Printf("  retries     %d (%.2fs waiting, Retry-After honored)\n", rep.Retries, rep.RetryWaitSeconds)
	if rep.ChaosKills > 0 {
		fmt.Printf("  chaos kills %d (SIGKILL + restart, same data dir)\n", rep.ChaosKills)
	}
	fmt.Printf("  elapsed     %.2fs\n", rep.Elapsed)
	fmt.Printf("  throughput  %.1f jobs/s\n", rep.Throughput)
	fmt.Printf("  latency ms  p50=%.2f p90=%.2f p95=%.2f p99=%.2f max=%.2f\n",
		rep.LatencyMS.P50, rep.LatencyMS.P90, rep.LatencyMS.P95, rep.LatencyMS.P99, rep.LatencyMS.Max)
	if len(rep.PerWorker) > 0 {
		names := make([]string, 0, len(rep.PerWorker))
		for w := range rep.PerWorker {
			names = append(names, w)
		}
		sort.Strings(names)
		fmt.Printf("  per worker\n")
		for _, w := range names {
			fmt.Printf("    %-40s %d completed\n", w, rep.PerWorker[w])
		}
	}
	for i, f := range failures {
		if i == 10 {
			fmt.Fprintf(os.Stderr, "fsload: ... and %d more failures\n", len(failures)-10)
			break
		}
		fmt.Fprintln(os.Stderr, "fsload: failure:", f)
	}

	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsload:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(rep)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsload:", err)
			os.Exit(1)
		}
	}
	if rep.Failed > 0 {
		os.Exit(1)
	}
	if *chaosKill {
		if rep.ChaosKills == 0 {
			fmt.Fprintln(os.Stderr, "fsload: chaos-kill requested but no kill happened")
			os.Exit(1)
		}
		if rep.Completed != rep.Requests {
			fmt.Fprintf(os.Stderr, "fsload: chaos-kill lost jobs: %d/%d completed\n", rep.Completed, rep.Requests)
			os.Exit(1)
		}
		fmt.Println("  chaos-kill  PASS: zero lost jobs across SIGKILL + restart")
	}
}
