// Command fsload is a closed-loop load generator for fsmemd: a fixed
// number of in-flight clients each submit a job, wait for it to reach
// a terminal state, and record the end-to-end latency. It reports
// throughput and latency percentiles, so the daemon's scaling and
// cache-hit claims are measurable rather than asserted.
//
// Usage:
//
//	fsload -addr http://127.0.0.1:8377                 # 200 simulate jobs, 8 clients
//	fsload -n 1000 -c 32 -spread 16                    # 16 distinct configs (cache mix)
//	fsload -spread 1                                   # one config: pure cache-hit path
//	fsload -report fsload_report.json                  # machine-readable report
//
// With -spread 1 every request after the first is answered from the
// daemon's result cache, which is the hot path BenchmarkServerCacheHit
// pins. Larger -spread values force distinct simulations and exercise
// the queue and worker pool.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fsmem/internal/config"
	"fsmem/internal/server"
	"fsmem/internal/server/client"
)

type report struct {
	Requests   int     `json:"requests"`
	Completed  int     `json:"completed"`
	CacheHits  int     `json:"cache_hits"`
	Rejected   int     `json:"rejected"` // 429/503 backpressure responses
	Failed     int     `json:"failed"`
	Elapsed    float64 `json:"elapsed_seconds"`
	Throughput float64 `json:"throughput_rps"`
	LatencyMS  struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P95 float64 `json:"p95"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8377", "fsmemd base URL")
	n := flag.Int("n", 200, "total requests")
	c := flag.Int("c", 8, "concurrent closed-loop clients")
	spread := flag.Int("spread", 4, "distinct configs to cycle through (1 = pure cache-hit path)")
	wl := flag.String("workload", "mcf", "workload for generated simulate jobs")
	sched := flag.String("sched", "fs_bp", "scheduler for generated simulate jobs")
	cores := flag.Int("cores", 2, "cores for generated simulate jobs")
	reads := flag.Int64("reads", 500, "reads per generated simulate job")
	poll := flag.Duration("poll", 10*time.Millisecond, "status poll interval")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	reportPath := flag.String("report", "", "write the JSON report to this file")
	flag.Parse()

	if *spread < 1 {
		*spread = 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	cl := client.New(*addr, nil)
	if err := cl.Health(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "fsload: daemon not reachable at %s: %v\n", *addr, err)
		os.Exit(2)
	}

	reqFor := func(i int) server.JobRequest {
		e := config.Default()
		e.Workload = *wl
		e.Scheduler = *sched
		e.Cores = *cores
		e.Reads = *reads
		// Distinct seeds address distinct cache entries; modulo spread
		// keeps the working set bounded so hits dominate once warm.
		e.Seed = uint64(1 + i%*spread)
		return server.JobRequest{Kind: server.KindSimulate, Simulate: &e}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		rep       report
		next      atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n || ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				st, err := cl.Submit(ctx, reqFor(i))
				if err == nil && !st.State.Terminal() {
					st, err = cl.Wait(ctx, st.ID, *poll)
				}
				lat := time.Since(t0)
				mu.Lock()
				switch {
				case err != nil:
					if ae, ok := err.(*client.APIError); ok && (ae.StatusCode == 429 || ae.StatusCode == 503) {
						rep.Rejected++
					} else {
						rep.Failed++
					}
				case st.State == server.StateDone:
					rep.Completed++
					if st.CacheHit {
						rep.CacheHits++
					}
					latencies = append(latencies, lat)
				default:
					rep.Failed++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep.Requests = *n
	rep.Elapsed = elapsed.Seconds()
	if elapsed > 0 {
		rep.Throughput = float64(rep.Completed) / elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(q float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(q * float64(len(latencies)-1))
		return float64(latencies[idx]) / float64(time.Millisecond)
	}
	rep.LatencyMS.P50 = pct(0.50)
	rep.LatencyMS.P90 = pct(0.90)
	rep.LatencyMS.P95 = pct(0.95)
	rep.LatencyMS.P99 = pct(0.99)
	if len(latencies) > 0 {
		rep.LatencyMS.Max = float64(latencies[len(latencies)-1]) / float64(time.Millisecond)
	}

	fmt.Printf("fsload: %d requests, %d clients, spread %d\n", rep.Requests, *c, *spread)
	fmt.Printf("  completed   %d (%d cache hits)\n", rep.Completed, rep.CacheHits)
	fmt.Printf("  rejected    %d (backpressure)\n", rep.Rejected)
	fmt.Printf("  failed      %d\n", rep.Failed)
	fmt.Printf("  elapsed     %.2fs\n", rep.Elapsed)
	fmt.Printf("  throughput  %.1f jobs/s\n", rep.Throughput)
	fmt.Printf("  latency ms  p50=%.2f p90=%.2f p95=%.2f p99=%.2f max=%.2f\n",
		rep.LatencyMS.P50, rep.LatencyMS.P90, rep.LatencyMS.P95, rep.LatencyMS.P99, rep.LatencyMS.Max)

	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsload:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(rep)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsload:", err)
			os.Exit(1)
		}
	}
	if rep.Failed > 0 {
		os.Exit(1)
	}
}
