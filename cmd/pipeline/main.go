// Command pipeline prints the paper's static schedules: the solver table
// for every anchor/partitioning combination (Sections 3-4) and Figure 1/2
// style command/data bus occupancy diagrams for any FS variant.
//
// Usage:
//
//	pipeline -solve                 # minimal l for every anchor/mode
//	pipeline -mode rp               # Figure 1: rank-partitioned pipeline
//	pipeline -mode np -intervals 2  # Figure 2: no-partitioning pipelines
//
// Profiling: -cpuprofile, -memprofile, and -exectrace write the
// standard Go profiles (inspect with `go tool pprof` / `go tool trace`).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"fsmem/internal/addr"
	"fsmem/internal/core"
	"fsmem/internal/dram"
	"fsmem/internal/obs"
)

func main() {
	solve := flag.Bool("solve", false, "print the minimal-l solver table and exit")
	ddr4 := flag.Bool("ddr4", false, "use DDR4-2400 (bank groups) instead of DDR3-1600")
	mode := flag.String("mode", "rp", "pipeline to draw: rp, bp, reordered, np, triple")
	domains := flag.Int("threads", 8, "number of threads / security domains")
	intervals := flag.Int("intervals", 1, "number of Q-cycle intervals to draw")
	pattern := flag.String("pattern", "rwrrrrww", "per-thread transaction kinds (r/w), cycled to the thread count")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	exectrace := flag.String("exectrace", "", "write a Go execution trace to this file")
	flag.Parse()

	stopProf, err := obs.StartProfiling(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipeline:", err)
		os.Exit(2)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "pipeline: profiling: %v\n", err)
		}
	}()

	p := dram.DDR3_1600()
	if *ddr4 {
		p = dram.DDR4_2400()
	}
	if *solve {
		printSolverTable(p)
		if *ddr4 {
			if l, err := core.MinLRotation(p.BankGroups, core.FixedRAS, p); err == nil {
				fmt.Printf("%d-way bank-group rotation (no partitioning): l=%d\n", p.BankGroups, l)
			}
		}
		for n := 1; n <= 4; n++ {
			if plan, err := core.SolveConsecutive(n, p); err == nil {
				fmt.Printf("consecutive transactions: %v\n", plan)
			}
		}
		return
	}

	variant, ok := map[string]core.Variant{
		"rp":        core.FSRankPart,
		"bp":        core.FSBankPart,
		"reordered": core.FSReorderedBank,
		"np":        core.FSNoPart,
		"triple":    core.FSNoPartTriple,
	}[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -mode %q\n", *mode)
		os.Exit(2)
	}

	writes := make([]bool, *domains)
	for i := range writes {
		writes[i] = (*pattern)[i%len(*pattern)] == 'w'
	}
	cfg := core.Config{Variant: variant, Domains: *domains, Seed: 1}
	cmds, fs, err := core.RecordPipeline(p, cfg, writes, *intervals+2)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if errs := core.VerifyPipeline(p, cmds); len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "PIPELINE NOT CONFLICT-FREE: %v\n", errs[0])
		os.Exit(1)
	}

	fmt.Printf("%s: l = %d cycles, Q = %d cycles (%d threads)\n", variant, fs.L(), fs.Q(), *domains)
	fmt.Printf("peak data-bus utilization: %.1f%%\n", peakUtil(variant, fs, *domains, p)*100)
	fmt.Printf("verified conflict-free: %d commands, 0 violations\n\n", len(cmds))
	// Draw a steady-state window (skip the first interval's fill).
	from := fs.Q()
	to := from + fs.Q()*int64(*intervals)
	if to-from > 400 {
		to = from + 400
		fmt.Printf("(window truncated to 400 cycles)\n")
	}
	fmt.Print(core.RenderDiagram(p, cmds, from, to))
}

func peakUtil(v core.Variant, fs *core.FS, domains int, p dram.Params) float64 {
	perInterval := domains * p.TBURST
	if v == core.FSNoPartTriple {
		perInterval *= 3
	}
	return float64(perInterval) / float64(fs.Q())
}

func printSolverTable(p dram.Params) {
	fmt.Println("Minimal conflict-free slot spacing l (DDR3-1600, Table 1 timings)")
	fmt.Println("mode/anchor                                  l   paper")
	paper := map[string]string{
		"rank/fixed-periodic-data": "7 (§3.1)",
		"rank/fixed-periodic-RAS":  "12 (§3.1)",
		"rank/fixed-periodic-CAS":  "12 (§3.1)",
		"bank/fixed-periodic-data": "21 (Eq. 4b)",
		"bank/fixed-periodic-RAS":  "15 (§4.2)",
		"none/fixed-periodic-RAS":  "43 (§4.3)",
	}
	table := core.SolverTable(p)
	keys := make([]string, 0, len(table))
	for k := range table {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		note := paper[k]
		fmt.Printf("%-42s %3d   %s\n", k, table[k], note)
	}
	for _, mode := range []addr.PartitionKind{addr.PartitionRank, addr.PartitionBank, addr.PartitionNone} {
		a, l, err := core.BestAnchor(mode, p)
		if err != nil {
			fmt.Printf("best[%v]: %v\n", mode, err)
			continue
		}
		fmt.Printf("best anchor for %-8v partitioning: %v (l=%d)\n", mode, a, l)
	}
}
