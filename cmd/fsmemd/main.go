// Command fsmemd is the simulation-as-a-service daemon: an HTTP/JSON
// API over the fsmem simulator with a bounded job queue, a
// content-addressed result cache, SSE progress streaming, and
// production plumbing (rate limiting, health/readiness probes, a
// Prometheus-style /metrics endpoint, graceful drain on SIGTERM).
//
// Usage:
//
//	fsmemd                          # listen on :8377
//	fsmemd -addr :9000 -j 8         # 8 executor workers
//	fsmemd -queue 128 -cache 1024   # deeper queue, bigger result cache
//	fsmemd -rate 200 -burst 400     # submission token bucket
//	fsmemd -data-dir /var/lib/fsmemd   # crash-safe: job journal + result store
//	fsmemd -data-dir d -quarantine-after 5   # park poison jobs after 5 crashes
//
// Endpoints:
//
//	POST   /v1/jobs                 submit a job (simulate, figures, leakage, chaos)
//	GET    /v1/jobs/{id}            job status
//	GET    /v1/jobs/{id}/result     canonical JSON result document
//	GET    /v1/jobs/{id}/events     SSE progress stream
//	GET    /v1/jobs/{id}/trace      command trace (observed jobs; ?format=jsonl|chrome)
//	DELETE /v1/jobs/{id}            cancel
//	GET    /healthz /readyz /metrics
//
// On SIGTERM or SIGINT the daemon drains: new submissions get 503,
// queued and in-flight jobs run to completion (bounded by
// -drain-timeout), then the process exits 0.
//
// With -data-dir the daemon is crash-safe: every accepted job is
// journaled (write-ahead) before it becomes runnable and every finished
// result is persisted to a checksummed content-addressed store, so a
// SIGKILLed daemon restarted over the same directory re-serves done
// results byte-identically, re-runs interrupted jobs (re-execution is
// byte-deterministic), and quarantines jobs that keep crashing the
// executor instead of crash-looping.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"fsmem/internal/obs"
	"fsmem/internal/server"
)

func main() {
	addr := flag.String("addr", ":8377", "listen address")
	workers := flag.Int("j", 0, "executor workers (0 = GOMAXPROCS)")
	gridShards := flag.Int("grid-shards", 0, "per-job simulation grid shard width (0 = -j)")
	queue := flag.Int("queue", 64, "bounded queue depth per priority level")
	cache := flag.Int("cache", 256, "result cache capacity in entries")
	rate := flag.Float64("rate", 50, "submission rate limit (jobs/second)")
	burst := flag.Float64("burst", 0, "submission burst size (0 = rate)")
	reqTimeout := flag.Duration("timeout", 30*time.Second, "per-request handling timeout (non-streaming endpoints)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "graceful-drain budget on SIGTERM")
	dataDir := flag.String("data-dir", "", "durability directory (job journal + disk result store; empty = in-memory only)")
	quarantineAfter := flag.Int("quarantine-after", 3, "executor crashes before a job is quarantined")
	pidfile := flag.String("pidfile", "", "write the daemon PID to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	exectrace := flag.String("exectrace", "", "write a Go execution trace to this file")
	flag.Parse()

	stopProf, err := obs.StartProfiling(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsmemd:", err)
		os.Exit(2)
	}

	if *pidfile != "" {
		if err := os.WriteFile(*pidfile, []byte(strconv.Itoa(os.Getpid())+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fsmemd:", err)
			os.Exit(2)
		}
		defer os.Remove(*pidfile)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	fmt.Fprintf(os.Stderr, "fsmemd: listening on %s\n", *addr)
	err = server.Serve(ctx, server.Options{
		Addr:            *addr,
		Workers:         *workers,
		GridShards:      *gridShards,
		QueueDepth:      *queue,
		CacheEntries:    *cache,
		RatePerSec:      *rate,
		Burst:           *burst,
		RequestTimeout:  *reqTimeout,
		DrainTimeout:    *drainTimeout,
		DataDir:         *dataDir,
		QuarantineAfter: *quarantineAfter,
	})
	if perr := stopProf(); perr != nil {
		fmt.Fprintf(os.Stderr, "fsmemd: profiling: %v\n", perr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsmemd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "fsmemd: drained cleanly")
}
