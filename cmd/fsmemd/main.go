// Command fsmemd is the simulation-as-a-service daemon: an HTTP/JSON
// API over the fsmem simulator with a bounded job queue, a
// content-addressed result cache, SSE progress streaming, and
// production plumbing (rate limiting, health/readiness probes, a
// Prometheus-style /metrics endpoint, graceful drain on SIGTERM).
//
// Usage:
//
//	fsmemd                          # listen on :8377
//	fsmemd -addr :9000 -j 8         # 8 executor workers
//	fsmemd -queue 128 -cache 1024   # deeper queue, bigger result cache
//	fsmemd -rate 200 -burst 400     # submission token bucket
//	fsmemd -data-dir /var/lib/fsmemd   # crash-safe: job journal + result store
//	fsmemd -data-dir d -quarantine-after 5   # park poison jobs after 5 crashes
//
// Cluster mode (see README "Cluster" and DESIGN.md §12):
//
//	fsmemd -role coordinator -workers http://h1:8377,http://h2:8377
//	fsmemd -role worker -addr :8377 -join http://coord:8376
//	fsmemd -role coordinator -verify-sample 0.1   # re-run 10% of jobs on a
//	                                              # second worker and byte-diff
//
// A coordinator serves the same job API a single daemon does, but
// consistent-hash-routes each content-addressed job ID across the
// registered worker fleet, re-serves finished results from a local
// cache, heartbeats the fleet, steals work off unhealthy workers, and
// transparently retries on another worker (idempotent, because job IDs
// are content-addressed and execution is byte-deterministic). A worker
// is a plain daemon that additionally registers itself with -join.
//
// Endpoints:
//
//	POST   /v1/jobs                 submit a job (simulate, figures, leakage, chaos, audit)
//	GET    /v1/jobs/{id}            job status
//	GET    /v1/jobs/{id}/result     canonical JSON result document
//	GET    /v1/jobs/{id}/events     SSE progress stream (single daemon)
//	GET    /v1/jobs/{id}/trace      command trace (observed jobs; single daemon)
//	DELETE /v1/jobs/{id}            cancel (single daemon)
//	GET    /v1/cluster              fleet status (coordinator)
//	POST   /v1/cluster/register     join the fleet (coordinator)
//	GET    /healthz /readyz /metrics
//
// On SIGTERM or SIGINT the daemon drains: new submissions get 503,
// queued and in-flight jobs run to completion (bounded by
// -drain-timeout), then the process exits 0.
//
// With -data-dir the daemon is crash-safe: every accepted job is
// journaled (write-ahead) before it becomes runnable and every finished
// result is persisted to a checksummed content-addressed store, so a
// SIGKILLed daemon restarted over the same directory re-serves done
// results byte-identically, re-runs interrupted jobs (re-execution is
// byte-deterministic), and quarantines jobs that keep crashing the
// executor instead of crash-looping.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fsmem/internal/obs"
	"fsmem/internal/server"
	"fsmem/internal/server/client"
	"fsmem/internal/server/cluster"
)

func main() {
	addr := flag.String("addr", "", "listen address (default :8377, coordinator :8376)")
	role := flag.String("role", "worker", "worker (a plain daemon, optionally joining a fleet) or coordinator")
	join := flag.String("join", "", "coordinator base URL to register this worker with")
	advertise := flag.String("advertise", "", "base URL this worker advertises to the fleet (default derived from -addr)")
	workersList := flag.String("workers", "", "comma-separated worker base URLs for the initial fleet (coordinator)")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "fleet heartbeat interval (coordinator)")
	failAfter := flag.Int("fail-after", 2, "consecutive failed heartbeats before a worker is unhealthy (coordinator)")
	window := flag.Int("window", 8, "per-worker in-flight job window (coordinator)")
	maxAttempts := flag.Int("max-attempts", 8, "workers to try per job before giving up (coordinator)")
	verifySample := flag.Float64("verify-sample", 0, "fraction of finished jobs re-executed on a second worker and byte-compared (coordinator)")
	workers := flag.Int("j", 0, "executor workers (0 = GOMAXPROCS)")
	gridShards := flag.Int("grid-shards", 0, "per-job simulation grid shard width (0 = -j)")
	queue := flag.Int("queue", 64, "bounded queue depth per priority level (coordinator: live-job cap)")
	cache := flag.Int("cache", 256, "result cache capacity in entries")
	rate := flag.Float64("rate", 50, "submission rate limit (jobs/second)")
	burst := flag.Float64("burst", 0, "submission burst size (0 = rate)")
	reqTimeout := flag.Duration("timeout", 30*time.Second, "per-request handling timeout (non-streaming endpoints)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "graceful-drain budget on SIGTERM")
	dataDir := flag.String("data-dir", "", "durability directory (job journal + disk result store; empty = in-memory only)")
	quarantineAfter := flag.Int("quarantine-after", 3, "executor crashes before a job is quarantined")
	pidfile := flag.String("pidfile", "", "write the daemon PID to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	exectrace := flag.String("exectrace", "", "write a Go execution trace to this file")
	flag.Parse()

	stopProf, err := obs.StartProfiling(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsmemd:", err)
		os.Exit(2)
	}

	if *pidfile != "" {
		if err := os.WriteFile(*pidfile, []byte(strconv.Itoa(os.Getpid())+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fsmemd:", err)
			os.Exit(2)
		}
		defer os.Remove(*pidfile)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	switch *role {
	case "coordinator":
		if *addr == "" {
			*addr = ":8376"
		}
		var fleet []string
		for _, w := range strings.Split(*workersList, ",") {
			if w = strings.TrimSpace(w); w != "" {
				fleet = append(fleet, w)
			}
		}
		fmt.Fprintf(os.Stderr, "fsmemd: coordinator listening on %s (%d workers)\n", *addr, len(fleet))
		err = cluster.Serve(ctx, cluster.Options{
			Addr:              *addr,
			Workers:           fleet,
			HeartbeatInterval: *heartbeat,
			FailAfter:         *failAfter,
			Window:            *window,
			MaxAttempts:       *maxAttempts,
			VerifySample:      *verifySample,
			CacheEntries:      *cache,
			QueueDepth:        *queue,
			RequestTimeout:    *reqTimeout,
			DrainTimeout:      *drainTimeout,
		})
	case "worker":
		if *addr == "" {
			*addr = ":8377"
		}
		name := *advertise
		if name == "" && *join != "" {
			name = advertiseURL(*addr)
		}
		if *join != "" {
			go register(ctx, *join, name)
		}
		fmt.Fprintf(os.Stderr, "fsmemd: listening on %s\n", *addr)
		err = server.Serve(ctx, server.Options{
			Addr:            *addr,
			Workers:         *workers,
			GridShards:      *gridShards,
			QueueDepth:      *queue,
			CacheEntries:    *cache,
			RatePerSec:      *rate,
			Burst:           *burst,
			RequestTimeout:  *reqTimeout,
			DrainTimeout:    *drainTimeout,
			DataDir:         *dataDir,
			QuarantineAfter: *quarantineAfter,
			WorkerName:      name,
		})
	default:
		fmt.Fprintf(os.Stderr, "fsmemd: unknown -role %q (worker or coordinator)\n", *role)
		os.Exit(2)
	}
	if perr := stopProf(); perr != nil {
		fmt.Fprintf(os.Stderr, "fsmemd: profiling: %v\n", perr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsmemd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "fsmemd: drained cleanly")
}

// advertiseURL derives the URL other nodes should dial from a listen
// address: ":8377" has no host, so loopback is assumed (use -advertise
// for multi-host fleets).
func advertiseURL(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

// register joins the coordinator's fleet, retrying until it succeeds
// (the coordinator may still be booting) or ctx ends.
func register(ctx context.Context, coordinator, name string) {
	cl := client.New(coordinator, nil)
	for {
		rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		err := cl.Register(rctx, name)
		cancel()
		if err == nil {
			fmt.Fprintf(os.Stderr, "fsmemd: registered %s with %s\n", name, coordinator)
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(500 * time.Millisecond):
		}
	}
}
