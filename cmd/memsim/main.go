// Command memsim runs one workload under one memory scheduling policy and
// prints throughput, latency, bandwidth, dummy/prefetch, and energy
// statistics.
//
// Usage:
//
//	memsim -workload mcf -sched fs_rp -reads 100000
//	memsim -workload mix1 -sched baseline
//	memsim -print-config
//	memsim -cmd-trace run.jsonl -metrics     # observability outputs
//
// Observability: -cmd-trace exports the DRAM command/event stream as JSONL
// (render with cmd/tracedump), -chrome-trace as a Chrome trace_event file
// (load in Perfetto or chrome://tracing), -metrics prints the end-of-run
// metrics snapshot. Profiling: -cpuprofile / -memprofile / -exectrace
// write the standard Go profiles (-exectrace because -trace already names
// the input memory-trace file).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fsmem"
	"fsmem/internal/addr"
	"fsmem/internal/config"
	"fsmem/internal/energy"
	"fsmem/internal/obs"
	"fsmem/internal/trace"
	"fsmem/internal/workload"
)

var schedNames = map[string]fsmem.SchedulerKind{
	"baseline":        fsmem.Baseline,
	"tp_bp":           fsmem.TPBank,
	"tp_np":           fsmem.TPNone,
	"fs_rp":           fsmem.FSRankPart,
	"fs_bp":           fsmem.FSBankPart,
	"fs_reordered_bp": fsmem.FSReorderedBank,
	"fs_np":           fsmem.FSNoPart,
	"fs_np_optimized": fsmem.FSNoPartTriple,
}

func main() {
	wl := flag.String("workload", "mcf", "benchmark name (rate mode), or mix1/mix2")
	schedName := flag.String("sched", "fs_rp", "scheduler: "+strings.Join(keys(), ", "))
	cores := flag.Int("cores", 8, "cores / security domains")
	reads := flag.Int64("reads", 50_000, "demand reads to simulate")
	seed := flag.Uint64("seed", 42, "random seed")
	prefetch := flag.Bool("prefetch", false, "enable the sandbox prefetcher")
	energyOpts := flag.Bool("energy-opts", false, "enable all three FS energy optimizations")
	fsRefresh := flag.Bool("refresh", false, "enable refresh (baseline, or FS_RP's deterministic refresh windows)")
	weights := flag.String("weights", "", "comma-separated SLA slot weights per domain (FS only)")
	channels := flag.Int("channels", 1, "memory-fabric width (1 = classic single channel)")
	routing := flag.String("routing", "colored", "multi-channel routing: colored (per-domain channels) or interleaved (striped)")
	traceIn := flag.String("trace", "", "drive every domain from this post-LLC trace file instead of the synthetic workload")
	traceOut := flag.String("record-trace", "", "record domain 0's reference stream to this file and exit")
	traceCount := flag.Int("record-count", 100000, "references to record with -record-trace")
	printConfig := flag.Bool("print-config", false, "print the Table 1 configuration and exit")
	configIn := flag.String("config", "", "load the full experiment from this JSON file (overrides other flags)")
	configOut := flag.String("save-config", "", "write the selected experiment as JSON and exit")
	cmdTrace := flag.String("cmd-trace", "", "export the DRAM command/event trace as JSONL to this file")
	chromeTrace := flag.String("chrome-trace", "", "export the command/event trace as Chrome trace_event JSON to this file")
	traceCap := flag.Int("trace-cap", 0, "trace ring capacity in events (0 = default)")
	metrics := flag.Bool("metrics", false, "print the end-of-run metrics snapshot")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	exectrace := flag.String("exectrace", "", "write a Go execution trace to this file")
	flag.Parse()

	stopProf, err := obs.StartProfiling(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "memsim: profiling: %v\n", err)
		}
	}()

	if *printConfig {
		p := fsmem.DDR3x1600()
		fmt.Printf("DDR3-1600, %d channel(s), %d ranks/channel, %d banks/rank\n", p.Channels, p.RanksPerChan, p.BanksPerRank)
		fmt.Printf("tRC=%d tRCD=%d tRAS=%d tRP=%d tRTP=%d tWR=%d\n", p.TRC, p.TRCD, p.TRAS, p.TRP, p.TRTP, p.TWR)
		fmt.Printf("tFAW=%d tRRD=%d tCCD=%d tWTR=%d tCAS=%d tCWD=%d tBURST=%d tRTRS=%d\n",
			p.TFAW, p.TRRD, p.TCCD, p.TWTR, p.TCAS, p.TCWD, p.TBURST, p.TRTRS)
		fmt.Printf("tREFI=%d tRFC=%d tXP=%d; CPU:bus clock ratio %d\n", p.TREFI, p.TRFC, p.TXP, p.CPUCyclesPerBusCycle)
		fmt.Printf("workloads: %s\n", strings.Join(fsmem.Workloads(), ", "))
		return
	}

	k, ok := schedNames[*schedName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -sched %q (options: %s)\n", *schedName, strings.Join(keys(), ", "))
		os.Exit(2)
	}
	var mix fsmem.Mix
	switch *wl {
	case "mix1":
		mix, err = fsmem.Mix1()
	case "mix2":
		mix, err = fsmem.Mix2()
	default:
		mix, err = fsmem.RateWorkload(*wl, *cores)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	route, err := addr.RoutingByName(*routing)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *configOut != "" {
		e := config.Default()
		e.Workload = *wl
		e.Cores = *cores
		e.Scheduler = *schedName
		e.Reads = *reads
		e.Seed = *seed
		e.Prefetch = *prefetch
		e.Refresh = *fsRefresh
		if *channels > 1 {
			e.Channels = *channels
			e.Routing = route.String()
		}
		f, err := os.Create(*configOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := e.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *configOut)
		return
	}

	cfg := fsmem.NewConfig(mix, k)
	cfg.TargetReads = *reads
	cfg.Seed = *seed
	cfg.Prefetch = *prefetch
	cfg.RefreshEnabled = *fsRefresh
	if *channels > 1 {
		cfg.Channels = *channels
		cfg.Routing = route
	}
	if *energyOpts {
		cfg.Energy = fsmem.EnergyOpts{SuppressDummies: true, RowBufferBoost: true, PowerDown: true}
	}
	if *weights != "" {
		for _, f := range strings.Split(*weights, ",") {
			var w int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &w); err != nil {
				fmt.Fprintf(os.Stderr, "bad -weights entry %q\n", f)
				os.Exit(2)
			}
			cfg.SLAWeights = append(cfg.SLAWeights, w)
		}
	}

	if *traceOut != "" {
		space, err := addr.SpaceFor(k.Partition(), 0, len(mix.Profiles), cfg.DRAM)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		gen := workload.NewGenerator(mix.Profiles[0], space, cfg.DRAM, *seed)
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteTrace(f, trace.Capture(gen, *traceCount)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d references of %s to %s\n", *traceCount, mix.Profiles[0].Name, *traceOut)
		return
	}
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		refs, err := trace.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Every domain replays the trace, remapped into its own partition
		// space (the OS page-coloring step).
		cfg.StreamFactory = func(domain int, space addr.Space, seed uint64) trace.Stream {
			remapped := make([]trace.Ref, len(refs))
			for i, r := range refs {
				r.Addr.Rank = space.Ranks[r.Addr.Rank%len(space.Ranks)]
				r.Addr.Bank = space.Banks[r.Addr.Bank%len(space.Banks)]
				remapped[i] = r
			}
			return &trace.SliceStream{Refs: remapped}
		}
	}

	if *configIn != "" {
		f, err := os.Open(*configIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		e, err := config.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg, err = e.ToSimConfig()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *cmdTrace != "" || *chromeTrace != "" || *metrics {
		fsmem.Observe(&cfg, fsmem.ObserveOptions{TraceCap: *traceCap})
	}

	res, err := fsmem.Simulate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	run := res.Run

	export := func(path, format string) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = fsmem.TraceExport(f, res, format)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	export(*cmdTrace, "jsonl")
	export(*chromeTrace, "chrome")

	fmt.Printf("scheduler          %s\n", run.Scheduler)
	fmt.Printf("workload           %s (%d domains)\n", run.Workload, len(run.Domains))
	if cfg.Channels > 1 {
		fmt.Printf("fabric             %d channels, %s routing\n", cfg.Channels, cfg.Routing)
	}
	fmt.Printf("bus cycles         %d\n", run.BusCycles)
	fmt.Printf("demand reads       %d\n", run.TotalReads())
	fmt.Printf("instructions       %d\n", run.TotalInstructions())
	fmt.Printf("avg read latency   %.1f bus cycles\n", run.AvgReadLatency())
	fmt.Printf("bus utilization    %.1f%%\n", run.BusUtilization()*100)
	fmt.Printf("dummy fraction     %.1f%%\n", run.DummyFraction()*100)

	model := energy.NewModel(cfg.DRAM, energy.DDR3_4Gb())
	var fsStats = res.FS
	b := model.ForRun(run, fsStats)
	fmt.Printf("memory energy      %.3f mJ (act %.2f / rd %.2f / wr %.2f / bg %.2f)\n",
		b.Total*1e3, b.ActivateJ*1e3, b.ReadJ*1e3, b.WriteJ*1e3, b.BackgroundJ*1e3)
	fmt.Printf("energy per read    %.1f nJ\n", energy.PerRead(b, run)*1e9)

	if len(run.Latency) > 0 && run.Latency[0].Count() > 0 {
		fmt.Printf("read latency tail   p50<=%d p95<=%d p99<=%d max=%d bus cycles\n",
			run.Latency[0].Quantile(0.5), run.Latency[0].Quantile(0.95),
			run.Latency[0].Quantile(0.99), run.Latency[0].Max())
	}

	fmt.Println("\nper-domain:")
	fmt.Println("  dom  IPC     reads    writes   dummies  prefetch  rowhits  avg-lat")
	for d, dom := range run.Domains {
		fmt.Printf("  %3d  %.3f %8d %8d %8d %8d %8d %8.1f\n",
			d, dom.IPC(), dom.Reads, dom.Writes, dom.Dummies, dom.Prefetches, dom.RowHits, dom.AvgReadLatency())
	}

	if *metrics {
		fmt.Println("\nmetrics:")
		io.WriteString(os.Stdout, res.Metrics.Format())
	}
}

func keys() []string {
	out := make([]string, 0, len(schedNames))
	for k := range schedNames {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
